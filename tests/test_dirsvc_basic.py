"""Directory server semantics on a single server (one physical, several
logical sites)."""

import pytest

from repro.nfs.errors import (
    NFS3ERR_EXIST,
    NFS3ERR_ISDIR,
    NFS3ERR_NOENT,
    NFS3ERR_NOTDIR,
    NFS3ERR_NOTEMPTY,
    NFS3ERR_STALE,
    NFS3_OK,
)
from repro.nfs.fhandle import FHandle
from repro.nfs.types import NF3DIR, NF3LNK, NF3REG, Sattr3

from dir_harness import DirHarness


def harness(**kw):
    kw.setdefault("num_servers", 1)
    return DirHarness(**kw)


def test_create_and_lookup():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "hello.txt")
        assert created.status == NFS3_OK
        found = yield from h.lookup(h.root_fh, "hello.txt")
        return created, found

    created, found = h.run(run())
    assert found.status == NFS3_OK
    assert found.fh == created.fh
    assert found.attr.ftype == NF3REG
    assert found.attr.nlink == 1


def test_lookup_missing_is_noent():
    h = harness()

    def run():
        res = yield from h.lookup(h.root_fh, "ghost")
        return res

    assert h.run(run()).status == NFS3ERR_NOENT


def test_lookup_dot_and_dotdot():
    h = harness()

    def run():
        made = yield from h.mkdir(h.root_fh, "sub")
        sub_fh = FHandle.unpack(made.fh)
        dot = yield from h.lookup(sub_fh, ".")
        dotdot = yield from h.lookup(sub_fh, "..")
        return made, dot, dotdot

    made, dot, dotdot = h.run(run())
    assert dot.status == NFS3_OK
    assert dot.attr.fileid == FHandle.unpack(made.fh).fileid
    assert dotdot.status == NFS3_OK
    assert dotdot.attr.fileid == h.root_fh.fileid


def test_guarded_create_conflict():
    h = harness()

    def run():
        yield from h.create(h.root_fh, "file", mode=1)
        res = yield from h.create(h.root_fh, "file", mode=1)
        return res

    assert h.run(run()).status == NFS3ERR_EXIST


def test_unchecked_create_returns_existing():
    h = harness()

    def run():
        first = yield from h.create(h.root_fh, "file", mode=0)
        second = yield from h.create(h.root_fh, "file", mode=0)
        return first, second

    first, second = h.run(run())
    assert second.status == NFS3_OK
    assert second.fh == first.fh


def test_create_in_nonexistent_parent_type():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "plain")
        file_fh = FHandle.unpack(created.fh)
        res = yield from h.create(file_fh, "child")
        return res

    assert h.run(run()).status == NFS3ERR_NOTDIR


def test_mkdir_sets_nlink_and_parent_link():
    h = harness()

    def run():
        made = yield from h.mkdir(h.root_fh, "d1")
        sub = yield from h.getattr(FHandle.unpack(made.fh))
        root = yield from h.getattr(h.root_fh)
        return made, sub, root

    made, sub, root = h.run(run())
    assert made.status == NFS3_OK
    assert sub.attr.nlink == 2
    assert root.attr.nlink == 3  # root gained a subdirectory


def test_remove_file():
    h = harness()

    def run():
        yield from h.create(h.root_fh, "doomed")
        res = yield from h.remove(h.root_fh, "doomed")
        gone = yield from h.lookup(h.root_fh, "doomed")
        return res, gone

    res, gone = h.run(run())
    assert res.status == NFS3_OK
    assert gone.status == NFS3ERR_NOENT


def test_remove_missing_is_noent():
    h = harness()

    def run():
        res = yield from h.remove(h.root_fh, "never")
        return res

    assert h.run(run()).status == NFS3ERR_NOENT


def test_remove_directory_is_isdir():
    h = harness()

    def run():
        yield from h.mkdir(h.root_fh, "d")
        res = yield from h.remove(h.root_fh, "d")
        return res

    assert h.run(run()).status == NFS3ERR_ISDIR


def test_rmdir_empty_ok_and_parent_nlink_drops():
    h = harness()

    def run():
        yield from h.mkdir(h.root_fh, "d")
        res = yield from h.rmdir(h.root_fh, "d")
        root = yield from h.getattr(h.root_fh)
        return res, root

    res, root = h.run(run())
    assert res.status == NFS3_OK
    assert root.attr.nlink == 2


def test_rmdir_nonempty_rejected():
    h = harness()

    def run():
        made = yield from h.mkdir(h.root_fh, "d")
        yield from h.create(FHandle.unpack(made.fh), "occupant")
        res = yield from h.rmdir(h.root_fh, "d")
        return res

    assert h.run(run()).status == NFS3ERR_NOTEMPTY


def test_rmdir_on_file_is_notdir():
    h = harness()

    def run():
        yield from h.create(h.root_fh, "f")
        res = yield from h.rmdir(h.root_fh, "f")
        return res

    assert h.run(run()).status == NFS3ERR_NOTDIR


def test_getattr_stale_after_remove():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "f")
        fh = FHandle.unpack(created.fh)
        yield from h.remove(h.root_fh, "f")
        res = yield from h.getattr(fh)
        return res

    assert h.run(run()).status == NFS3ERR_STALE


def test_setattr_mode_and_times():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "f")
        fh = FHandle.unpack(created.fh)
        res = yield from h.setattr(fh, Sattr3(mode=0o600, mtime=123.5))
        return res

    res = h.run(run())
    assert res.status == NFS3_OK
    assert res.attr.mode == 0o600
    assert res.attr.mtime == pytest.approx(123.5)


def test_setattr_guard_mismatch():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "f")
        fh = FHandle.unpack(created.fh)
        res = yield from h.setattr(fh, Sattr3(mode=0o600), guard=999999.0)
        return res

    from repro.nfs.errors import NFS3ERR_NOT_SYNC

    assert h.run(run()).status == NFS3ERR_NOT_SYNC


def test_link_and_remove_one_name():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "orig")
        fh = FHandle.unpack(created.fh)
        linked = yield from h.link(fh, h.root_fh, "alias")
        assert linked.status == NFS3_OK
        assert linked.file_attr.nlink == 2
        yield from h.remove(h.root_fh, "orig")
        alias = yield from h.lookup(h.root_fh, "alias")
        return alias

    alias = h.run(run())
    assert alias.status == NFS3_OK
    assert alias.attr.nlink == 1


def test_link_existing_name_rejected():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "a")
        yield from h.create(h.root_fh, "b")
        res = yield from h.link(FHandle.unpack(created.fh), h.root_fh, "b")
        return res

    assert h.run(run()).status == NFS3ERR_EXIST


def test_rename_same_dir():
    h = harness()

    def run():
        created = yield from h.create(h.root_fh, "old")
        res = yield from h.rename(h.root_fh, "old", h.root_fh, "new")
        old = yield from h.lookup(h.root_fh, "old")
        new = yield from h.lookup(h.root_fh, "new")
        return created, res, old, new

    created, res, old, new = h.run(run())
    assert res.status == NFS3_OK
    assert old.status == NFS3ERR_NOENT
    assert new.status == NFS3_OK
    assert new.attr.fileid == FHandle.unpack(created.fh).fileid


def test_rename_overwrites_existing_file():
    h = harness()

    def run():
        a = yield from h.create(h.root_fh, "a")
        yield from h.create(h.root_fh, "b")
        res = yield from h.rename(h.root_fh, "a", h.root_fh, "b")
        b = yield from h.lookup(h.root_fh, "b")
        return a, res, b

    a, res, b = h.run(run())
    assert res.status == NFS3_OK
    assert b.attr.fileid == FHandle.unpack(a.fh).fileid


def test_rename_missing_source_is_noent():
    h = harness()

    def run():
        res = yield from h.rename(h.root_fh, "nope", h.root_fh, "other")
        return res

    assert h.run(run()).status == NFS3ERR_NOENT


def test_rename_directory_across_parents_updates_nlink():
    h = harness()

    def run():
        d1 = yield from h.mkdir(h.root_fh, "d1")
        d2 = yield from h.mkdir(h.root_fh, "d2")
        sub = yield from h.mkdir(FHandle.unpack(d1.fh), "sub")
        res = yield from h.rename(
            FHandle.unpack(d1.fh), "sub", FHandle.unpack(d2.fh), "moved"
        )
        a1 = yield from h.getattr(FHandle.unpack(d1.fh))
        a2 = yield from h.getattr(FHandle.unpack(d2.fh))
        moved = yield from h.lookup(FHandle.unpack(d2.fh), "moved")
        dotdot = yield from h.lookup(FHandle.unpack(sub.fh), "..")
        return res, a1, a2, moved, dotdot

    res, a1, a2, moved, dotdot = h.run(run())
    assert res.status == NFS3_OK
    assert a1.attr.nlink == 2  # lost its subdir
    assert a2.attr.nlink == 3  # gained it
    assert moved.status == NFS3_OK
    assert dotdot.attr.fileid == a2.attr.fileid  # parent pointer rewritten


def test_symlink_and_readlink():
    h = harness()

    def run():
        made = yield from h.symlink(h.root_fh, "ln", "/target/path")
        res = yield from h.readlink(FHandle.unpack(made.fh))
        return made, res

    made, res = h.run(run())
    assert made.status == NFS3_OK
    assert FHandle.unpack(made.fh).ftype == NF3LNK
    assert res.status == NFS3_OK
    assert res.path == "/target/path"


def test_readdir_lists_all_entries():
    h = harness()

    def run():
        for i in range(10):
            yield from h.create(h.root_fh, f"file-{i:02d}")
        status, names = yield from h.readdir_all(h.root_fh)
        return status, names

    status, names = h.run(run())
    assert status == 0
    assert names[0] == "." and names[1] == ".."
    assert sorted(n for n in names if n.startswith("file-")) == [
        f"file-{i:02d}" for i in range(10)
    ]


def test_readdir_paginates():
    h = harness(params=None)
    # Force tiny readdir replies to exercise cookie-based continuation.
    for server in h.servers:
        server.params.readdir_max_entries = 4

    def run():
        for i in range(20):
            yield from h.create(h.root_fh, f"e{i:03d}")
        status, names = yield from h.readdir_all(h.root_fh)
        return status, names

    status, names = h.run(run())
    assert status == 0
    entries = [n for n in names if n.startswith("e")]
    assert len(entries) == 20
    assert len(set(entries)) == 20  # no duplicates across pages
