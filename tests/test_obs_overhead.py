"""Observability must not perturb the modelled system.

Tracing and telemetry are measurement layers: a traced cluster must
complete the *same* workload in the *same* simulated time as an untraced
one (the instrumentation happens at zero simulated cost).  The guard
budget is <2% drift; in practice the drift is exactly zero, so any
nonzero value means an instrumentation hook started consuming simulated
resources and the telemetry layer is no longer an observer.
"""

import pytest

from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.obs import Tracer
from repro.workloads.bulkio import dd_write
from repro.workloads.untar import UntarSpec, UntarWorkload

OVERHEAD_BUDGET = 0.02  # <2% simulated-time drift allowed


def _run_workload(tracer, telemetry):
    cluster = SliceCluster(
        params=ClusterParams(num_storage_nodes=2, num_dir_servers=1),
        tracer=tracer,
    )
    if telemetry:
        cluster.start_telemetry(interval=0.01)
    client, _proxy = cluster.add_client()
    untar = UntarWorkload(
        client, cluster.root_fh, UntarSpec(total_entries=30), seed=7
    )
    cluster.run(untar.run(), name="untar")
    cluster.run(
        dd_write(client, cluster.root_fh, "pay.bin", 2 << 20), name="dd"
    )
    return cluster.sim.now


def test_tracing_and_telemetry_add_no_simulated_overhead():
    baseline = _run_workload(tracer=None, telemetry=False)
    traced = _run_workload(tracer=Tracer(), telemetry=False)
    telemetered = _run_workload(tracer=Tracer(), telemetry=True)
    assert baseline > 0.0
    assert abs(traced - baseline) / baseline < OVERHEAD_BUDGET
    assert abs(telemetered - baseline) / baseline < OVERHEAD_BUDGET
    # The stronger property actually holds: identical to the float.
    assert traced == pytest.approx(baseline, rel=1e-12)


def test_untraced_cluster_has_no_tracer_state():
    cluster = SliceCluster(params=ClusterParams(num_storage_nodes=1))
    assert cluster.tracer is None
    assert cluster.telemetry is None
    client, _proxy = cluster.add_client()
    untar = UntarWorkload(
        client, cluster.root_fh, UntarSpec(total_entries=10), seed=1
    )
    cluster.run(untar.run(), name="untar")  # runs clean with tracing off
