"""Figure 4: impact of directory affinity for mkdir switching.

The paper varies the affinity (1-p) — the probability that a new directory
stays on its parent's server — under the untar workload with four
directory servers and 1/4/8/16 client processes.  Expected shape: at light
load the curve is flat (one server suffices); at heavier load, moving
right (more affinity) first helps slightly (fewer cross-server operations)
and then hurts sharply as affinity approaches 1.0 because all load lands
on one server.  The paper's conclusion: even distributions with fewer than
20% of mkdirs redirected.
"""

import pytest

from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.metrics.report import format_table
from repro.workloads.untar import UntarSpec, UntarWorkload

from conftest import SCALE, run_once, scaled

AFFINITIES = [0.0, 0.5, 0.8, 0.95, 1.0]
PROCESS_COUNTS = [1, 8]
ENTRIES_PER_PROC = scaled(6000, minimum=300)
NUM_DIR_SERVERS = 4
CLIENT_HOSTS = 4  # "four client nodes"


def untar_latency(affinity, nprocs):
    cluster = SliceCluster(
        params=ClusterParams(
            num_storage_nodes=2,
            num_dir_servers=NUM_DIR_SERVERS,
            num_sf_servers=1,
            dir_logical_sites=32,
            sf_logical_sites=4,
            mkdir_p=1.0 - affinity,
        )
    )
    clients = [
        cluster.add_client(f"c{i}", port=700 + i)[0]
        for i in range(min(CLIENT_HOSTS, nprocs))
    ]
    spec = UntarSpec(total_entries=ENTRIES_PER_PROC)
    workloads = [
        UntarWorkload(
            clients[i % len(clients)], cluster.root_fh, spec,
            prefix=f"p{i}", seed=i,
        )
        for i in range(nprocs)
    ]
    sim = cluster.sim
    results = []

    def one(workload):
        result = yield from workload.run()
        results.append(result)

    def all_procs():
        yield sim.all_of([sim.process(one(w)) for w in workloads])

    cluster.run(all_procs())
    return sum(r[2] for r in results) / len(results)


def test_fig4_mkdir_switching_affinity(benchmark):
    curves = {}

    def experiment():
        for nprocs in PROCESS_COUNTS:
            curves[nprocs] = [
                untar_latency(affinity, nprocs) for affinity in AFFINITIES
            ]
        return curves

    run_once(benchmark, experiment)

    rows = []
    for i, affinity in enumerate(AFFINITIES):
        rows.append(
            [f"{affinity:.2f}"]
            + [f"{curves[n][i]:.2f}s" for n in PROCESS_COUNTS]
        )
    print(format_table(
        ["affinity (1-p)"] + [f"{n} procs" for n in PROCESS_COUNTS],
        rows,
        title=(
            f"Figure 4: untar latency vs directory affinity "
            f"({NUM_DIR_SERVERS} dir servers, scale={SCALE})"
        ),
    ))

    # Light load: affinity does not matter much (one server can handle it).
    light = curves[PROCESS_COUNTS[0]]
    assert max(light) < min(light) * 1.8
    # Heavy load: full affinity (everything on one server) is clearly worse
    # than a distribution-friendly setting.
    heavy = curves[PROCESS_COUNTS[-1]]
    best = min(heavy)
    assert heavy[-1] > best * 1.35
    # Moderate affinity (<= 0.8, i.e. redirecting >= 20%) is near-optimal.
    assert min(heavy[:3]) <= best * 1.1
