"""Online scale-out: a bandwidth-vs-nodes trajectory over live rebinds.

The paper's §2.2 pitch is incremental scaling: add a storage node and
aggregate bandwidth grows, *without* unmounting clients.  This benchmark
measures that end to end through the reconfiguration machinery:

1. build a Slice ensemble from a declarative :class:`repro.api.ClusterSpec`
   and write a striped file per client;
2. measure aggregate cold-read bandwidth on the initial array;
3. repeatedly ``cluster.add_storage_node()`` + ``cluster.rebalance(plan)``
   — one epoch bump per step, ~1/Nth of the logical sites migrated —
   while the clients keep re-reading their files (every live read must
   come back bit-exact), re-measuring cold-read bandwidth after each step.

The resulting trajectory is printed as a table and dumped to
``BENCH_reconfig.json`` in the working directory so CI can diff the
scaling shape across commits.
"""

import json
import math
from pathlib import Path

from repro.api import ClusterSpec, build
from repro.metrics.report import format_table
from repro.workloads.bulkio import dd_read, dd_write

from conftest import SCALE, run_once, scaled

NODES_START = 1  # saturated single node: scale-out must buy bandwidth
SCALEOUT_STEPS = 2  # 1 -> 2 -> 3 nodes, one epoch bump each
STORAGE_SITES = 24  # divisible by every node count on the trajectory
NUM_CLIENTS = 8
FILE_SIZE = scaled(8 << 20, minimum=512 << 10)
LIVE_READS = 2  # re-read passes per client during each rebalance


def _cold_caches(cluster):
    for node in cluster.storage_nodes:
        node.cache.clear()
        node._last_local.clear()
        node._prefetched_local.clear()


def _read_bandwidth(cluster, clients, handles):
    """Aggregate cold-read MB/s across all clients."""
    _cold_caches(cluster)
    sim = cluster.sim
    reads = {}

    def reader(index):
        res = yield from dd_read(clients[index], handles[index], FILE_SIZE)
        reads[index] = res

    def phase():
        yield sim.all_of(
            [sim.process(reader(i)) for i in range(len(clients))]
        )

    cluster.run(phase())
    return sum(r.nbytes for r in reads.values()) / max(
        r.elapsed for r in reads.values()
    ) / 1e6


def scaleout_experiment():
    spec = ClusterSpec(
        storage_nodes=NODES_START,
        dir_servers=1,
        sf_servers=1,
        storage_sites=STORAGE_SITES,
        verify_checksums=False,  # checksum offload, as on the paper's NICs
    )
    cluster = build(spec)
    sim = cluster.sim
    clients = [
        cluster.add_client(f"c{i}", port=700 + i)[0]
        for i in range(NUM_CLIENTS)
    ]
    handles = {}
    writes = {}

    def writer(index):
        fh, res = yield from dd_write(
            clients[index], cluster.root_fh, f"dd{index}.bin",
            FILE_SIZE, seed=index,
        )
        handles[index] = fh
        writes[index] = res

    def write_phase():
        yield sim.all_of(
            [sim.process(writer(i)) for i in range(NUM_CLIENTS)]
        )

    cluster.run(write_phase())
    write_mbps = sum(r.nbytes for r in writes.values()) / max(
        r.elapsed for r in writes.values()
    ) / 1e6
    trajectory = [{
        "nodes": NODES_START,
        "epoch": cluster.configsvc.epoch,
        "read_mbps": _read_bandwidth(cluster, clients, handles),
    }]
    steps = []
    live_ok = [0]

    def live_reader(index):
        for _ in range(LIVE_READS):
            # verify_seed: every live read must come back bit-exact even
            # while its blocks are mid-flight between nodes.
            res = yield from dd_read(
                clients[index], handles[index], FILE_SIZE, verify_seed=index
            )
            assert res.nbytes == FILE_SIZE, "short live read mid-rebalance"
            live_ok[0] += 1

    def scaleout(plan):
        t0 = sim.now
        readers = [
            sim.process(live_reader(i)) for i in range(NUM_CLIENTS)
        ]
        report = yield from cluster.rebalance(plan)
        rebalance_secs = sim.now - t0
        yield sim.all_of(readers)
        return report, rebalance_secs

    for step in range(SCALEOUT_STEPS):
        nodes_after = NODES_START + step + 1
        epoch_before = cluster.configsvc.epoch
        plan = cluster.add_storage_node()
        report, rebalance_secs = cluster.run(scaleout(plan))
        assert cluster.configsvc.epoch == epoch_before + 1
        assert report.sites_moved == STORAGE_SITES // nodes_after
        steps.append({
            "nodes": nodes_after,
            "sites_moved": report.sites_moved,
            "units_moved": report.units_moved,
            "bytes_moved": report.bytes_moved,
            "rebalance_seconds": rebalance_secs,
        })
        trajectory.append({
            "nodes": nodes_after,
            "epoch": cluster.configsvc.epoch,
            "read_mbps": _read_bandwidth(cluster, clients, handles),
        })

    return {
        "scale": SCALE,
        "file_size": FILE_SIZE,
        "clients": NUM_CLIENTS,
        "storage_sites": STORAGE_SITES,
        "write_mbps_initial": write_mbps,
        "live_reads_ok": live_ok[0],
        "steps": steps,
        "trajectory": trajectory,
    }


def test_reconfig_scaleout_bandwidth(benchmark):
    result = run_once(benchmark, scaleout_experiment)
    # Every live read issued during every rebind window completed.
    assert result["live_reads_ok"] == NUM_CLIENTS * LIVE_READS * SCALEOUT_STEPS
    total_bytes = NUM_CLIENTS * FILE_SIZE
    for step in result["steps"]:
        # Each rebind really moved data, and no more than ~1/Nth of it
        # (slack: stripe-unit rounding at site edges).
        assert step["units_moved"] > 0 and step["bytes_moved"] > 0
        assert step["bytes_moved"] <= math.ceil(
            total_bytes / step["nodes"]
        ) + total_bytes // 8
    # The pitch itself: growing the array online grew aggregate bandwidth.
    assert (
        result["trajectory"][-1]["read_mbps"]
        > result["trajectory"][0]["read_mbps"]
    )
    out = Path("BENCH_reconfig.json")
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    rows = [
        (
            str(point["nodes"]),
            str(point["epoch"]),
            f"{point['read_mbps']:.0f}",
            str(step["sites_moved"]) if step else "-",
            str(step["bytes_moved"]) if step else "-",
            f"{step['rebalance_seconds']:.2f}" if step else "-",
        )
        for point, step in zip(
            result["trajectory"], [None] + result["steps"]
        )
    ]
    print()
    print(format_table(
        ["nodes", "epoch", "read MB/s", "sites moved", "bytes moved",
         "rebalance (sim s)"],
        rows,
        title=(
            f"Online scale-out trajectory under live reads "
            f"({result['live_reads_ok']} live reads, all bit-exact)"
        ),
    ))
    print(f"  wrote {out.resolve()}")
