"""Table 3: µproxy CPU cost at 6250 packets/second.

Paper numbers (fraction of a 500 MHz client CPU under the name-intensive
untar workload, 3125 request/response pairs per second):

    Packet interception     0.7 %
    Packet decode           4.1 %
    Redirection/rewriting   0.5 %
    Soft state logic        0.8 %
    (total                  6.1 %)

The µproxy meters per-phase cycles as it routes; we run the same untar
mix through it, take cycles-per-packet, and normalize to the paper's
packet rate and CPU clock.
"""

from repro.core import CostModel, CostParams
from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.metrics.report import format_table
from repro.workloads.untar import UntarSpec, UntarWorkload

from conftest import SCALE, run_once, scaled

PAPER = {
    "intercept": 0.007,
    "decode": 0.041,
    "rewrite": 0.005,
    "softstate": 0.008,
}
REFERENCE_PACKETS_PER_SEC = 6250.0
REFERENCE_HZ = 500e6


def test_table3_uproxy_cpu_breakdown(benchmark):
    cost = CostModel(CostParams(cpu_hz=REFERENCE_HZ))
    cluster = SliceCluster(
        params=ClusterParams(
            num_storage_nodes=2, num_dir_servers=2, num_sf_servers=1,
            dir_logical_sites=16, sf_logical_sites=4,
        )
    )
    client, _proxy = cluster.add_client(cost=cost)
    spec = UntarSpec(total_entries=scaled(36000 // 4, minimum=400))

    def experiment():
        workload = UntarWorkload(client, cluster.root_fh, spec, prefix="p0")
        cluster.run(workload.run())
        per_packet = {
            phase: cycles / max(1, cost.packets)
            for phase, cycles in cost.cycles.items()
        }
        return {
            phase: cpp * REFERENCE_PACKETS_PER_SEC / REFERENCE_HZ
            for phase, cpp in per_packet.items()
        }

    fractions = run_once(benchmark, experiment)

    rows = []
    for phase, label in [
        ("intercept", "Packet interception"),
        ("decode", "Packet decode"),
        ("rewrite", "Redirection/rewriting"),
        ("softstate", "Soft state logic"),
    ]:
        rows.append((
            label,
            f"{fractions[phase] * 100:.1f}%",
            f"{PAPER[phase] * 100:.1f}%",
        ))
    total = sum(fractions.values())
    rows.append(("TOTAL", f"{total * 100:.1f}%", "6.1%"))
    print(format_table(
        ["operation", "measured CPU", "paper"],
        rows,
        title=f"Table 3: µproxy CPU cost at 6250 packets/s (scale={SCALE})",
    ))

    # Shape: decode dominates; every phase lands within a factor of ~1.7 of
    # the paper's share; total in the single-digit-percent range.
    assert fractions["decode"] == max(fractions.values())
    for phase, expected in PAPER.items():
        assert expected / 1.8 < fractions[phase] < expected * 1.8, phase
    assert 0.035 < total < 0.10
