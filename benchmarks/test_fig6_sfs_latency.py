"""Figure 6: SPECsfs97 latency as a function of delivered throughput.

The paper plots mean request latency against delivered IOPS for the same
configurations as Figure 5, noting that "latency jumps are evident in the
Slice results as the ensemble overflows its 1 GB cache on the small-file
servers, but the prototype delivers acceptable latency at all workload
levels up to saturation."  For reference it overlays vendor-reported
numbers for the EMC Celerra 506 (32 drives, 4 GB cache) — reproduced here
as the published constants, exactly as the paper used them.
"""

import pytest

from repro.metrics.report import format_series, format_table

from conftest import SCALE, run_once
from sfs_common import SF_CACHE, SfsHarness, fileset_spec

# Vendor-reported reference points (spec.org, 4Q99), as cited in the paper:
# the Celerra 506 delivered ~10 ms at low load up to ~15,700 IOPS.
CELERRA_POINTS = [(2000, 4.9), (6000, 5.6), (10000, 7.0), (15700, 10.5)]

LOADS = [500, 1500, 3000, 5000, 8000]
CONFIGS = [
    ("Slice-2", dict(num_storage_nodes=2)),
    ("Slice-8", dict(num_storage_nodes=8)),
]


def test_fig6_sfs_latency(benchmark):
    series = {}
    overflow = {}

    def experiment():
        for name, kwargs in CONFIGS:
            harness = SfsHarness(name, nfiles=2400, **kwargs)
            series[name] = harness.sweep(LOADS)
            used = sum(s.cache.used for s in harness.cluster.sf_servers)
            capacity = sum(
                s.cache.capacity for s in harness.cluster.sf_servers
            )
            overflow[name] = used / capacity
        # The cache-overflow contrast: the same configuration and load with
        # a file set that *fits* the ensemble small-file cache shows the
        # latency level before the jump.
        fitting_files = int((0.6 * 2 * SF_CACHE) / (27 << 10))
        harness = SfsHarness(
            "Slice-2-fits", num_storage_nodes=2, nfiles=fitting_files
        )
        series["Slice-2 (fits in cache)"] = [
            harness.run_point(LOADS[1]), harness.run_point(LOADS[2])
        ]
        return series

    run_once(benchmark, experiment)

    rows = []
    for name in series:
        for result in series[name]:
            rows.append((
                name, f"{result.achieved_iops:.0f}",
                f"{result.mean_latency_ms:.1f}ms",
                f"{result.p95_latency_ms:.1f}ms",
            ))
    for iops, latency in CELERRA_POINTS:
        rows.append(("EMC Celerra 506 (vendor)", iops, f"{latency:.1f}ms", "-"))
    print(format_table(
        ["config", "delivered IOPS", "mean latency", "p95"],
        rows,
        title=f"Figure 6: SPECsfs latency vs delivered throughput (scale={SCALE})",
    ))

    for name, _k in CONFIGS:
        results = series[name]
        # Latency rises toward saturation but stays "acceptable" (the
        # paper's observation) until the knee.
        assert results[0].mean_latency_ms < results[-1].mean_latency_ms
        assert results[0].mean_latency_ms < 25.0
    # Cache overflow produces the latency jump: at the same offered load
    # (the mid grid point, where misses actually queue), the oversized file
    # set is clearly slower than the cacheable one.
    fits = series["Slice-2 (fits in cache)"][1].mean_latency_ms
    spills = series["Slice-2"][2].mean_latency_ms
    assert spills > fits * 1.3
    # More storage nodes push the latency knee to higher throughput.
    knee = lambda rs: max(r.achieved_iops for r in rs)
    assert knee(series["Slice-8"]) > knee(series["Slice-2"]) * 1.1
