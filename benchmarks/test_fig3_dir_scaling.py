"""Figure 3: directory service scaling under the name-intensive untar.

The paper plots average untar latency per client process against the
number of concurrent processes, for an NFS server exporting a memory file
system (N-MFS) and Slice with 1, 2, and 4 directory servers.  Expected
shape: MFS wins lightly loaded (Slice pays for journaling and update
traffic), then MFS's single CPU saturates while Slice-N latency stays flat
longer and scales with added directory servers (each server saturating
around 6000 ops/s).
"""

import pytest

from repro.ensemble.baseline import BaselineParams, MonolithicServer
from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.metrics.report import format_series, format_table
from repro.net import NetParams, Network
from repro.nfs.client import NfsClient
from repro.sim import Simulator
from repro.workloads.untar import UntarSpec, UntarWorkload

from conftest import SCALE, run_once, scaled

# The paper ran 36 000 entries (~250 000 NFS ops) per process.
ENTRIES_PER_PROC = scaled(6000, minimum=300)
PROCESS_COUNTS = [1, 4, 8]
CLIENT_HOSTS = 5  # "five client PCs"


def run_untar_processes(make_client, root_fh, sim, runner, nprocs):
    clients = [make_client(i) for i in range(min(CLIENT_HOSTS, nprocs))]
    spec = UntarSpec(total_entries=ENTRIES_PER_PROC)
    workloads = [
        UntarWorkload(
            clients[i % len(clients)], root_fh, spec, prefix=f"p{i}", seed=i
        )
        for i in range(nprocs)
    ]
    results = []

    def one(workload):
        result = yield from workload.run()
        results.append(result)

    def all_procs():
        yield sim.all_of([sim.process(one(w)) for w in workloads])

    runner(all_procs())
    mean_latency = sum(r[2] for r in results) / len(results)
    total_ops = sum(r[1] for r in results)
    throughput = total_ops / max(r[2] for r in results)
    return mean_latency, throughput


def slice_point(num_dir_servers, nprocs):
    cluster = SliceCluster(
        params=ClusterParams(
            num_storage_nodes=2,
            num_dir_servers=num_dir_servers,
            num_sf_servers=1,
            dir_logical_sites=16,
            sf_logical_sites=4,
        )
    )
    return run_untar_processes(
        lambda i: cluster.add_client(f"c{i}", port=700 + i)[0],
        cluster.root_fh, cluster.sim, cluster.run, nprocs,
    )


def mfs_point(nprocs):
    sim = Simulator()
    net = Network(sim, NetParams())
    server = MonolithicServer(
        sim, net.add_host("nfs"), BaselineParams(mode="mfs")
    )
    return run_untar_processes(
        lambda i: NfsClient(sim, net.add_host(f"c{i}"), server.address),
        server.root_fh(), sim, lambda gen: sim.run_process(gen), nprocs,
    )


def test_fig3_directory_service_scaling(benchmark):
    series = {}

    def experiment():
        for label, point in (
            ("N-MFS", mfs_point),
            ("Slice-1", lambda n: slice_point(1, n)),
            ("Slice-2", lambda n: slice_point(2, n)),
            ("Slice-4", lambda n: slice_point(4, n)),
        ):
            series[label] = [point(n) for n in PROCESS_COUNTS]
        return series

    run_once(benchmark, experiment)

    rows = []
    for i, nprocs in enumerate(PROCESS_COUNTS):
        rows.append([nprocs] + [
            f"{series[label][i][0]:.1f}s"
            for label in ("N-MFS", "Slice-1", "Slice-2", "Slice-4")
        ])
    print(format_table(
        ["processes", "N-MFS", "Slice-1", "Slice-2", "Slice-4"],
        rows,
        title=(
            f"Figure 3: untar latency per process "
            f"({ENTRIES_PER_PROC} entries/proc, scale={SCALE})"
        ),
    ))
    for label in ("N-MFS", "Slice-1", "Slice-2", "Slice-4"):
        print(format_series(
            label, PROCESS_COUNTS, [round(t, 0) for _l, t in series[label]],
            "processes", "aggregate ops/s",
        ))

    light = PROCESS_COUNTS.index(1)
    heavy = len(PROCESS_COUNTS) - 1
    # Lightly loaded: MFS beats Slice (journaling + update traffic).
    assert series["N-MFS"][light][0] < series["Slice-1"][light][0]
    # Heavily loaded: request routing spreads the load; more directory
    # servers help, and Slice-4 beats the saturated MFS server clearly.
    assert series["Slice-4"][heavy][0] < series["Slice-2"][heavy][0] * 1.05
    assert series["Slice-2"][heavy][0] < series["Slice-1"][heavy][0]
    assert series["Slice-4"][heavy][0] < series["N-MFS"][heavy][0] / 1.5
    # MFS throughput saturates: going 1 -> max processes barely helps.
    mfs_throughputs = [t for _l, t in series["N-MFS"]]
    assert mfs_throughputs[heavy] < mfs_throughputs[light] * 2.5
    # Slice-4 keeps scaling well past MFS's ceiling.
    assert max(t for _l, t in series["Slice-4"]) > max(mfs_throughputs) * 1.5
