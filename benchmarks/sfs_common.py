"""Shared SPECsfs harness for the Figure 5 / Figure 6 benchmarks.

Hardware matches the paper's testbed topology (1 directory server, 2
small-file servers, N storage nodes vs a single NFS/CCD server), but
caches and file sets are shrunk together by the bench scale so saturation
and cache-overflow appear at proportionally smaller IOPS — the paper's
shapes at a tractable simulation cost.  Each configuration builds its file
set once and sweeps offered load ascending on the same ensemble.
"""

from typing import Dict, List

from repro.ensemble.baseline import BaselineParams, MonolithicServer
from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.net import NetParams, Network
from repro.nfs.client import NfsClient
from repro.sim import Simulator
from repro.smallfile.server import SmallFileParams
from repro.storage.node import StorageNodeParams
from repro.workloads.fileset import FilesetSpec
from repro.workloads.specsfs import SfsConfig, SfsResult, SfsRun

# Hardware scale-down for the SFS experiments: memory AND disk arms shrink
# together (2 drives per node instead of 8; 10 MB caches instead of
# hundreds), so saturation and cache-overflow appear at proportionally
# smaller IOPS with the paper's shapes.
SF_CACHE = 10 << 20
NODE_CACHE = 10 << 20
BASE_CACHE = 10 << 20
DISKS_PER_NODE = 1

NUM_CLIENT_HOSTS = 4
NUM_PROCS = 192
WARMUP = 1.0
WINDOW = 4.0


def fileset_spec(nfiles: int, seed: int = 1) -> FilesetSpec:
    return FilesetSpec(
        num_files=nfiles,
        num_dirs=max(5, nfiles // 30),
        num_symlinks=max(5, nfiles // 50),
        seed=seed,
    )


class SfsHarness:
    """One configuration (Slice-N or the NFS baseline) under SFS load."""

    def __init__(self, config_name: str, num_storage_nodes: int = 0,
                 baseline: bool = False, nfiles: int = 800,
                 num_dir_servers: int = 1):
        self.name = config_name
        self.nfiles = nfiles
        if baseline:
            self.sim = Simulator()
            net = Network(self.sim, NetParams())
            self.server = MonolithicServer(
                self.sim, net.add_host("nfs"),
                BaselineParams(
                    mode="ffs", cache_bytes=BASE_CACHE,
                    num_disks=DISKS_PER_NODE,
                ),
            )
            self.clients = [
                NfsClient(self.sim, net.add_host(f"c{i}"), self.server.address)
                for i in range(NUM_CLIENT_HOSTS)
            ]
            self.root_fh = self.server.root_fh()
            self.runner = lambda gen: self.sim.run_process(gen)
        else:
            cluster = SliceCluster(
                params=ClusterParams(
                    num_storage_nodes=num_storage_nodes,
                    num_dir_servers=num_dir_servers,
                    # The SFS file set is a flat forest of directories under
                    # one parent; distribute them aggressively so multiple
                    # directory servers share the load (§3.2).
                    mkdir_p=1.0,
                    num_sf_servers=2,
                    dir_logical_sites=16,
                    sf_logical_sites=8,
                    storage=StorageNodeParams(
                        cache_bytes=NODE_CACHE, num_disks=DISKS_PER_NODE,
                    ),
                    smallfile=SmallFileParams(cache_bytes=SF_CACHE),
                )
            )
            self.cluster = cluster
            self.sim = cluster.sim
            self.clients = [
                cluster.add_client(f"c{i}", port=700 + i)[0]
                for i in range(NUM_CLIENT_HOSTS)
            ]
            self.root_fh = cluster.root_fh
            self.runner = cluster.run
        self._run_index = 0
        self._fileset = None

    def run_point(self, offered_load: float) -> SfsResult:
        """One load point.  Unlike real SPECsfs we build the file set once
        per configuration and sweep loads ascending over it — rebuilding a
        cache-busting file set per point would dominate simulation time
        without changing the shapes."""
        self._run_index += 1
        config = SfsConfig(
            offered_load=offered_load,
            num_procs=NUM_PROCS,
            warmup=WARMUP,
            window=WINDOW,
            fileset=fileset_spec(self.nfiles, seed=1),
            seed=self._run_index,
        )
        run = SfsRun(
            self.sim, self.clients, self.root_fh, config,
            dirname="sfs" if self._run_index == 1 else f"sfs{self._run_index}",
        )
        if self._run_index > 1 and self._fileset is not None:
            run.fileset = self._fileset
            result = self.runner(run.execute_with_existing())
        else:
            result = self.runner(run.execute())
            self._fileset = run.fileset
        return result

    def sweep(self, loads: List[float]) -> List[SfsResult]:
        return [self.run_point(load) for load in loads]
