"""Figure 5: SPECsfs97 delivered throughput at saturation.

The paper drives the SFS97 operation mix against Slice configurations with
1..8 storage nodes (one directory server, two small-file servers) and a
FreeBSD NFS baseline exporting its disk array as one volume.  Expected
shape: delivered IOPS tracks offered load until the disk arms saturate;
the baseline flattens first (850 IOPS on the testbed), Slice-1 somewhat
above it, and saturation scales with storage nodes (6600 IOPS at 8 nodes).

Here the hardware memory and file sets are shrunk together (see
sfs_common), so saturation appears at proportionally smaller absolute
IOPS; the scaling *ratios* are the reproduced result.
"""

import pytest

from repro.metrics.report import format_series, format_table

from conftest import SCALE, run_once
from sfs_common import SfsHarness

# Offered-load grid, shared by every configuration so the curves overlay
# like the paper's Figure 5.
LOADS = [500, 1500, 3500, 7000, 12000]
FILES = 2400

CONFIGS = [
    ("NFS", dict(baseline=True)),
    ("Slice-1", dict(num_storage_nodes=1)),
    ("Slice-2", dict(num_storage_nodes=2)),
    ("Slice-4", dict(num_storage_nodes=4)),
    ("Slice-8", dict(num_storage_nodes=8)),
    # Beyond the paper: once the single directory server becomes the
    # binding resource (visible at this bench scale), the architecture's
    # answer is to scale that class independently (§2).
    ("Slice-8+2dir", dict(num_storage_nodes=8, num_dir_servers=2)),
]


def saturation(results):
    return max(r.achieved_iops for r in results)


def test_fig5_sfs_throughput(benchmark):
    series = {}

    def experiment():
        for name, kwargs in CONFIGS:
            harness = SfsHarness(name, nfiles=FILES, **kwargs)
            series[name] = harness.sweep(LOADS)
        return series

    run_once(benchmark, experiment)

    rows = []
    for i, load in enumerate(LOADS):
        rows.append([load] + [
            f"{series[name][i].achieved_iops:.0f}"
            for name, _k in CONFIGS
        ])
    print(format_table(
        ["offered IOPS"] + [name for name, _k in CONFIGS],
        rows,
        title=f"Figure 5: SPECsfs delivered IOPS vs offered load (scale={SCALE})",
    ))
    sats = {name: saturation(series[name]) for name, _k in CONFIGS}
    print(format_table(
        ["config", "saturation IOPS", "vs NFS baseline"],
        [
            (name, f"{sats[name]:.0f}", f"{sats[name] / sats['NFS']:.2f}x")
            for name, _k in CONFIGS
        ],
        title="Figure 5: saturation points",
    ))

    # Shapes: delivered tracks offered at light load for every config.
    for name, _k in CONFIGS:
        first = series[name][0]
        assert first.achieved_iops > LOADS[0] * 0.75, name
    # Slice-1 at least matches the baseline (faster directory operations).
    assert sats["Slice-1"] > sats["NFS"] * 0.9
    # Throughput scales with storage nodes...
    assert sats["Slice-2"] > sats["Slice-1"] * 1.3
    assert sats["Slice-4"] > sats["Slice-2"] * 1.1
    # At this bench scale the lone directory server becomes the binding
    # resource around Slice-4; 8 nodes hold the level (the paper's testbed
    # hit its disk limit first, at 6600 IOPS).
    assert sats["Slice-8"] > sats["Slice-4"] * 0.95
    # Scaling the directory class unlocks the storage array again.
    assert sats["Slice-8+2dir"] > sats["Slice-8"] * 1.1
    # ... ending several times beyond the single-server baseline (the paper
    # measured 6600/850 ~ 7.8x with 8 nodes).
    assert sats["Slice-8"] > sats["NFS"] * 3.0
