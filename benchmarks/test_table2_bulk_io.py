"""Table 2: bulk I/O bandwidth in the test ensemble.

Paper numbers (MB/s):

                    single client    saturation
    read                 62.5           437
    write                38.9           479
    read-mirrored        52.9           222
    write-mirrored       32.2           251

The single-client column uses one dd stream (client-CPU / read-ahead
bound); the saturation column drives the storage array with enough client
hosts to saturate it.  Reads are measured cold (the paper's nodes sourced
reads from their disks).  Checksums are disabled as on the paper's
offloading NICs.
"""

import pytest

from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.metrics.report import format_table
from repro.workloads.bulkio import dd_read, dd_write

from conftest import SCALE, run_once

PAPER = {
    ("read", "single"): 62.5, ("read", "sat"): 437.0,
    ("write", "single"): 38.9, ("write", "sat"): 479.0,
    ("read-mirrored", "single"): 52.9, ("read-mirrored", "sat"): 222.0,
    ("write-mirrored", "single"): 32.2, ("write-mirrored", "sat"): 251.0,
}

SINGLE_FILE_BYTES = max(8 << 20, int((1.25 * (1 << 30)) * SCALE))
SAT_CLIENTS = 16
SAT_FILE_BYTES = max(4 << 20, SINGLE_FILE_BYTES // 8)


def build_cluster(mirror):
    params = ClusterParams(
        num_storage_nodes=8,
        num_dir_servers=1,
        num_sf_servers=2,
        verify_checksums=False,
        mirror_files=mirror,
    )
    return SliceCluster(params=params)


def chill_caches(cluster):
    """Cold read pass: drop node caches so reads come off the disks."""
    for node in cluster.storage_nodes:
        node.cache.clear()
        node._last_local.clear()
        node._prefetched_local.clear()
        for disk in node.array.disks:
            disk._next_phys = -1


def measure(mirror, num_clients, file_bytes):
    cluster = build_cluster(mirror)
    clients = [
        cluster.add_client(f"c{i}", port=700 + i)[0]
        for i in range(num_clients)
    ]
    sim = cluster.sim
    handles = {}
    write_results = {}
    read_results = {}

    def writer(i):
        fh, res = yield from dd_write(
            clients[i], cluster.root_fh, f"dd{i}.bin", file_bytes, seed=i
        )
        handles[i] = fh
        write_results[i] = res

    def reader(i):
        res = yield from dd_read(clients[i], handles[i], file_bytes)
        read_results[i] = res

    def phase(fn):
        yield sim.all_of([sim.process(fn(i)) for i in range(num_clients)])

    cluster.run(phase(writer))
    chill_caches(cluster)
    cluster.run(phase(reader))

    def aggregate(results):
        total = sum(r.nbytes for r in results.values())
        return total / max(r.elapsed for r in results.values()) / 1e6

    return aggregate(write_results), aggregate(read_results)


def test_table2_bulk_io_bandwidth(benchmark):
    measured = {}

    def experiment():
        for mirror, label in ((False, ""), (True, "-mirrored")):
            w1, r1 = measure(mirror, 1, SINGLE_FILE_BYTES)
            ws, rs = measure(mirror, SAT_CLIENTS, SAT_FILE_BYTES)
            measured[f"read{label}", "single"] = r1
            measured[f"read{label}", "sat"] = rs
            measured[f"write{label}", "single"] = w1
            measured[f"write{label}", "sat"] = ws
        return measured

    run_once(benchmark, experiment)

    rows = []
    for op in ("read", "write", "read-mirrored", "write-mirrored"):
        rows.append((
            op,
            f"{measured[op, 'single']:.1f}",
            f"{PAPER[op, 'single']:.1f}",
            f"{measured[op, 'sat']:.0f}",
            f"{PAPER[op, 'sat']:.0f}",
        ))
    print(format_table(
        ["operation", "single (MB/s)", "paper", "saturation (MB/s)", "paper"],
        rows,
        title=f"Table 2: bulk I/O bandwidth (scale={SCALE})",
    ))

    # Shape assertions: who wins and by roughly what factor.
    assert measured["read", "single"] > measured["write", "single"]
    assert measured["write-mirrored", "single"] < measured["write", "single"]
    # Saturation scales far beyond a single client.
    assert measured["read", "sat"] > 4 * measured["read", "single"]
    assert measured["write", "sat"] > 4 * measured["write", "single"]
    # Mirroring costs roughly 2x at saturation (extra copies / wasted
    # prefetch), within a generous envelope.
    assert 1.5 < measured["read", "sat"] / measured["read-mirrored", "sat"] < 2.6
    assert 1.5 < measured["write", "sat"] / measured["write-mirrored", "sat"] < 2.6
    # Absolute numbers within 35% of the paper for the single-client column.
    for op in ("read", "write", "read-mirrored", "write-mirrored"):
        ratio = measured[op, "single"] / PAPER[op, "single"]
        assert 0.65 < ratio < 1.35, (op, ratio)
