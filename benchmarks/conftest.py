"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's §5.  The
simulated hardware matches the paper's testbed; the *workload* is scaled
down by REPRO_BENCH_SCALE (default 0.12) so the suite runs in minutes —
sizes, load points, and file counts shrink, shapes do not.  Set
REPRO_BENCH_SCALE=1 for full-scale runs.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


def scaled(value, minimum=1):
    return max(minimum, int(value * SCALE))


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


def run_once(benchmark, fn):
    """Run a simulation experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def pytest_sessionfinish(session, exitstatus):
    """When tracing is on (REPRO_TRACE=1 / run_all.sh --with-traces), dump
    every live tracer's metrics tables at the end of the benchmark run.

    With telemetry additionally armed (REPRO_TELEMETRY=1 / run_all.sh
    --with-telemetry), also write a BENCH_anatomy.json sidecar holding
    the merged critical-path phase breakdown — the input to
    ``python -m repro.obs.benchdiff`` regression checks.
    """
    if not os.environ.get("REPRO_TRACE"):
        return
    from repro.obs import all_tracers

    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    write = reporter.write_line if reporter else print
    tracers = all_tracers()
    if not tracers:
        write("repro.obs: REPRO_TRACE set but no tracers were created")
        return
    for i, tracer in enumerate(tracers):
        write("")
        write(f"-- repro.obs tracer {i} summary: {tracer.summary()}")
        for line in tracer.metrics.format_tables().splitlines():
            write(line)
    if os.environ.get("REPRO_TELEMETRY"):
        _write_anatomy_sidecar(tracers, write)


def _write_anatomy_sidecar(tracers, write):
    """Merge every tracer's critical-path report into BENCH_anatomy.json."""
    import json

    from repro.obs import analyze

    merged = {"scale": SCALE, "tracers": []}
    for tracer in tracers:
        report = analyze(tracer, top_k=4)
        entry = report.to_dict()
        # The rendered span trees vary with timing noise across scales;
        # keep the sidecar diff-friendly by dropping them.
        for slow in entry.get("slow_requests", []):
            slow.pop("tree", None)
        merged["tracers"].append(entry)
        write("")
        for line in report.format_tables().splitlines():
            write(line)
    out = Path(__file__).parent / "BENCH_anatomy.json"
    out.write_text(json.dumps(merged, indent=1, sort_keys=True))
    write(f"repro.obs: wrote {out}")
