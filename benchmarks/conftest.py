"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's §5.  The
simulated hardware matches the paper's testbed; the *workload* is scaled
down by REPRO_BENCH_SCALE (default 0.12) so the suite runs in minutes —
sizes, load points, and file counts shrink, shapes do not.  Set
REPRO_BENCH_SCALE=1 for full-scale runs.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


def scaled(value, minimum=1):
    return max(minimum, int(value * SCALE))


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


def run_once(benchmark, fn):
    """Run a simulation experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def pytest_sessionfinish(session, exitstatus):
    """When tracing is on (REPRO_TRACE=1 / run_all.sh --with-traces), dump
    every live tracer's metrics tables at the end of the benchmark run."""
    if not os.environ.get("REPRO_TRACE"):
        return
    from repro.obs import all_tracers

    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    write = reporter.write_line if reporter else print
    tracers = all_tracers()
    if not tracers:
        write("repro.obs: REPRO_TRACE set but no tracers were created")
        return
    for i, tracer in enumerate(tracers):
        write("")
        write(f"-- repro.obs tracer {i} summary: {tracer.summary()}")
        for line in tracer.metrics.format_tables().splitlines():
            write(line)
