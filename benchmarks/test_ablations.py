"""Ablation benchmarks for design choices the paper calls out.

- MD5 vs cheaper digests for request routing (§4.1: "MD5 yields a
  combination of balanced distribution and low cost").
- The small-file threshold offset (§3.1).
- Synchronous vs piggybacked intention logging at commit (§3.3.2).
- Group commit in the write-ahead log (§2.3 / [10]).
- Routing-table granularity: logical sites bound rebalancing to ~1/N
  (§3.3.1 / [15]).
"""

import time

import pytest

from repro.core.placement import IoPolicy
from repro.core.uproxy import ProxyParams
from repro.ensemble.cluster import SliceCluster
from repro.ensemble.params import ClusterParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.util.hashing import HASHES
from repro.wal import WriteAheadLog

from conftest import SCALE, run_once, scaled


def test_ablation_routing_hash_balance(benchmark):
    """Distribute name keys over 64 logical sites with each digest."""
    num_sites = 64
    keys = [
        (parent, f"file{i}.c")
        for parent in range(scaled(40, minimum=8))
        for i in range(scaled(4000, minimum=500))
    ]

    def experiment():
        report = {}
        for name, fn in HASHES.items():
            start = time.perf_counter()
            buckets = [0] * num_sites
            for parent, fname in keys:
                digest = fn(parent.to_bytes(8, "big") + fname.encode())
                buckets[digest % num_sites] += 1
            elapsed = time.perf_counter() - start
            mean = len(keys) / num_sites
            imbalance = max(buckets) / mean
            report[name] = (imbalance, elapsed / len(keys) * 1e9)
        return report

    report = run_once(benchmark, experiment)
    rows = [
        (name, f"{imb:.3f}", f"{ns:.0f}ns")
        for name, (imb, ns) in report.items()
    ]
    print(format_table(
        ["hash", "max/mean bucket", "cost per key"],
        rows,
        title=f"Ablation: routing digest balance over 64 sites ({len(keys)} keys)",
    ))
    # MD5 balances to within statistical noise of an ideal uniform hash
    # (binomial envelope: mean + ~4 sigma).
    mean_per_bucket = len(keys) / num_sites
    envelope = 1 + 4.5 / mean_per_bucket**0.5
    assert report["md5"][0] < envelope
    # The weak multiplicative hash (djb2 over short structured keys) is
    # measurably worse balanced — the paper's reason for preferring MD5.
    assert report["md5"][0] < report["djb2"][0]


def test_ablation_threshold_offset(benchmark):
    """Sweep the small-file threshold: it trades small-file-server traffic
    against storage-node traffic for a SPECsfs-skewed file population."""
    from repro.util.bytesim import PatternData
    from repro.workloads.fileset import FilesetSpec, build_fileset

    thresholds = [8 << 10, 64 << 10, 256 << 10]
    spec = FilesetSpec(
        num_files=scaled(300, minimum=60), num_dirs=8, num_symlinks=4
    )

    def experiment():
        report = {}
        for threshold in thresholds:
            params = ClusterParams(
                num_storage_nodes=4, num_dir_servers=1, num_sf_servers=2,
                dir_logical_sites=8, sf_logical_sites=8,
            )
            params.io = IoPolicy(threshold=threshold)
            params.smallfile.threshold = threshold
            cluster = SliceCluster(params=params)
            client, _proxy = cluster.add_client()

            def run():
                built = yield from build_fileset(client, cluster.root_fh, spec)
                return built

            fileset = cluster.run(run())
            sf_bytes = sum(
                zone.alloc.allocated_bytes
                for server in cluster.sf_servers
                for zone in server.zones.values()
            )
            report[threshold] = sf_bytes / max(1, fileset.total_bytes)
        return report

    report = run_once(benchmark, experiment)
    rows = [
        (f"{t >> 10} KB", f"{frac * 100:.0f}%")
        for t, frac in report.items()
    ]
    print(format_table(
        ["threshold", "bytes absorbed by small-file servers"],
        rows,
        title="Ablation: small-file threshold offset",
    ))
    # Raising the threshold absorbs more bytes at the small-file servers.
    small, default, big = (report[t] for t in thresholds)
    assert small < default <= big
    # At the paper's 64 KB default, 94% of files (roughly a third of the
    # bytes) live wholly on the small-file servers; bulk bytes still bypass
    # the managers.
    assert 0.3 < default < 0.9
    assert small < default / 1.5


def test_ablation_intent_logging_mode(benchmark):
    """Commit latency: synchronous intents vs piggybacked (lazy) intents.

    The paper's coordinator protocol "eliminates some message exchanges and
    log writes from the critical path" — lazy intents shave a coordinator
    round-trip off every multi-site commit.
    """
    from repro.util.bytesim import PatternData

    def commit_latency(intent_sync: bool) -> float:
        cluster = SliceCluster(
            params=ClusterParams(
                num_storage_nodes=4, num_dir_servers=1, num_sf_servers=1,
                dir_logical_sites=8, sf_logical_sites=4,
            )
        )
        proxy_params = ProxyParams(intent_sync=intent_sync)
        client, _proxy = cluster.add_client(proxy_params=proxy_params)
        sim = cluster.sim
        latencies = []

        def run():
            for i in range(scaled(30, minimum=10)):
                created = yield from client.create(cluster.root_fh, f"f{i}")
                yield from client.write_file(
                    created.fh, PatternData(256 << 10, seed=i),
                    do_commit=False,
                )
                start = sim.now
                yield from client.commit(created.fh)
                latencies.append(sim.now - start)

        cluster.run(run())
        return sum(latencies) / len(latencies)

    def experiment():
        return {
            "synchronous": commit_latency(True),
            "piggybacked": commit_latency(False),
        }

    report = run_once(benchmark, experiment)
    print(format_table(
        ["intent mode", "mean commit latency"],
        [(k, f"{v * 1e3:.2f}ms") for k, v in report.items()],
        title="Ablation: intention logging on the commit critical path",
    ))
    assert report["piggybacked"] < report["synchronous"]


def test_ablation_group_commit(benchmark):
    """Group commit amortizes log flushes across concurrent updaters."""

    def throughput(writers: int) -> float:
        sim = Simulator()

        def slow_flush(nbytes):
            yield sim.timeout(0.001)  # 1 ms log device write

        log = WriteAheadLog(sim, write_cost=slow_flush)
        done = [0]

        def writer():
            for _ in range(50):
                log.append({"op": "x"})
                yield from log.sync()
                done[0] += 1

        def driver():
            yield sim.all_of([sim.process(writer()) for _ in range(writers)])

        sim.run_process(driver())
        return done[0] / sim.now

    def experiment():
        return {1: throughput(1), 16: throughput(16)}

    report = run_once(benchmark, experiment)
    print(format_table(
        ["concurrent updaters", "synced records/s"],
        [(k, f"{v:.0f}") for k, v in report.items()],
        title="Ablation: group commit (1 ms log device)",
    ))
    # One writer is bounded by the flush latency (~1000/s); sixteen share
    # flushes and push far beyond it.
    assert report[1] < 1100
    assert report[16] > report[1] * 5


def test_ablation_rebalance_granularity(benchmark):
    """Moving one logical site relocates ~1/L of the cells: finer logical
    granularity means finer-grained rebalancing (§3.3.1)."""
    from repro.workloads.untar import UntarSpec, UntarWorkload

    def moved_fraction(num_sites: int) -> float:
        cluster = SliceCluster(
            params=ClusterParams(
                num_storage_nodes=2, num_dir_servers=2, num_sf_servers=1,
                dir_logical_sites=num_sites, sf_logical_sites=4,
                mkdir_p=1.0,
            )
        )
        client, _proxy = cluster.add_client()
        workload = UntarWorkload(
            client, cluster.root_fh,
            UntarSpec(total_entries=scaled(2000, minimum=300)), prefix="p0",
        )
        cluster.run(workload.run())
        total = sum(
            s.cell_count() for srv in cluster.dir_servers
            for s in srv.sites.values()
        )
        # Move the busiest non-root site from server 0 to server 1.
        victim = max(
            (s for s in cluster.dir_servers[0].hosted_sites() if s != 0),
            key=lambda s: cluster.dir_servers[0].sites[s].cell_count(),
        )
        moved = cluster.move_dir_site(victim, to_server=1)
        return moved / total

    def experiment():
        return {sites: moved_fraction(sites) for sites in (4, 16, 64)}

    report = run_once(benchmark, experiment)
    print(format_table(
        ["logical sites", "fraction moved by one migration"],
        [(k, f"{v * 100:.1f}%") for k, v in report.items()],
        title="Ablation: routing-table granularity vs rebalancing unit",
    ))
    assert report[64] < report[16] < report[4]
    assert report[64] < 0.15
