#!/bin/sh
# Reproduce everything: full test suite, then every paper table/figure.
#
#   --with-traces   attach a repro.obs tracer to every cluster
#                   (REPRO_TRACE=1): tests replay protocol invariants and
#                   the benchmark session dumps per-tracer metrics tables.
for arg in "$@"; do
    case "$arg" in
        --with-traces)
            REPRO_TRACE=1
            export REPRO_TRACE
            ;;
        *)
            echo "usage: $0 [--with-traces]" >&2
            exit 2
            ;;
    esac
done
set -x
pytest tests/ 2>&1 | tee test_output.txt
pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt
