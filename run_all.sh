#!/bin/sh
# Reproduce everything: full test suite, then every paper table/figure.
set -x
pytest tests/ 2>&1 | tee test_output.txt
pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt
