#!/bin/sh
# Reproduce everything: full test suite, then every paper table/figure.
#
#   --with-traces   attach a repro.obs tracer to every cluster
#                   (REPRO_TRACE=1): tests replay protocol invariants and
#                   the benchmark session dumps per-tracer metrics tables.
#   --with-chaos    additionally run the seeded chaos suite (pytest -m
#                   chaos): whole-cluster fault schedules with trace
#                   invariants and determinism digests (see docs/FAULTS.md).
WITH_CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --with-traces)
            REPRO_TRACE=1
            export REPRO_TRACE
            ;;
        --with-chaos)
            WITH_CHAOS=1
            ;;
        *)
            echo "usage: $0 [--with-traces] [--with-chaos]" >&2
            exit 2
            ;;
    esac
done
set -x
pytest tests/ 2>&1 | tee test_output.txt
if [ "$WITH_CHAOS" = "1" ]; then
    pytest tests/ -m chaos 2>&1 | tee chaos_output.txt
fi
pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt
