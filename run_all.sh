#!/bin/sh
# Reproduce everything: full test suite, then every paper table/figure.
#
#   --with-traces   attach a repro.obs tracer to every cluster
#                   (REPRO_TRACE=1): tests replay protocol invariants and
#                   the benchmark session dumps per-tracer metrics tables.
#   --with-chaos    additionally run the seeded chaos suite (pytest -m
#                   chaos): whole-cluster fault schedules with trace
#                   invariants and determinism digests (see docs/FAULTS.md).
#   --with-reconfig additionally run the online-reconfiguration suite in
#                   isolation (pytest -m reconfig, already part of the
#                   default run) plus the scale-out benchmark, which
#                   writes BENCH_reconfig.json (see docs/RECONFIG.md).
#   --with-telemetry implies --with-traces and additionally runs the
#                   telemetry suite (pytest -m telemetry: traced workload
#                   runs with time-series sampling and exporter checks)
#                   and writes the BENCH_anatomy.json phase-breakdown
#                   sidecar from the benchmark session (diff two of them
#                   with `python -m repro.obs.benchdiff`).
WITH_CHAOS=0
WITH_RECONFIG=0
WITH_TELEMETRY=0
for arg in "$@"; do
    case "$arg" in
        --with-traces)
            REPRO_TRACE=1
            export REPRO_TRACE
            ;;
        --with-chaos)
            WITH_CHAOS=1
            ;;
        --with-reconfig)
            WITH_RECONFIG=1
            ;;
        --with-telemetry)
            WITH_TELEMETRY=1
            REPRO_TRACE=1
            export REPRO_TRACE
            REPRO_TELEMETRY=1
            export REPRO_TELEMETRY
            ;;
        *)
            echo "usage: $0 [--with-traces] [--with-chaos] [--with-reconfig] [--with-telemetry]" >&2
            exit 2
            ;;
    esac
done
set -x
pytest tests/ 2>&1 | tee test_output.txt
if [ "$WITH_TELEMETRY" = "1" ]; then
    pytest tests/ -m telemetry 2>&1 | tee telemetry_output.txt
fi
if [ "$WITH_CHAOS" = "1" ]; then
    pytest tests/ -m chaos 2>&1 | tee chaos_output.txt
fi
if [ "$WITH_RECONFIG" = "1" ]; then
    pytest tests/ -m reconfig 2>&1 | tee reconfig_output.txt
    pytest benchmarks/test_reconfig_scaleout.py --benchmark-only -s 2>&1 \
        | tee reconfig_bench_output.txt
fi
pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt
